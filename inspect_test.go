package epnet

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRunAttribution(t *testing.T) {
	cfg := fastCfg()
	cfg.Attribution = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attribution) != res.Channels {
		t.Fatalf("attribution entries = %d, want one per channel (%d)",
			len(res.Attribution), res.Channels)
	}
	// Per-channel energies are charged under the same profile and part
	// model as the aggregate, so they sum exactly to EnergyJoules.
	var sum float64
	window := cfg.Duration.Seconds()
	for _, la := range res.Attribution {
		sum += la.EnergyJoules
		if la.Utilization < 0 || la.Utilization > 1 {
			t.Errorf("%s: utilization %v out of range", la.Link, la.Utilization)
		}
		if la.RelPower <= 0 || la.RelPower > 1 {
			t.Errorf("%s: relative power %v out of range", la.Link, la.RelPower)
		}
		var at float64
		for _, s := range la.TimeAtRate {
			at += s
		}
		at += la.OffSeconds
		if math.Abs(at-window) > 1e-12 {
			t.Errorf("%s: time at rates %v s + off %v s != window %v s",
				la.Link, at-la.OffSeconds, la.OffSeconds, window)
		}
	}
	if math.Abs(sum-res.EnergyJoules) > 1e-9*res.EnergyJoules {
		t.Errorf("sum of per-channel energy %v J != Result.EnergyJoules %v J",
			sum, res.EnergyJoules)
	}

	// Off by default: no per-channel work, no entries.
	cfg.Attribution = false
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Attribution) != 0 {
		t.Errorf("attribution populated without opting in: %d entries", len(plain.Attribution))
	}

	// Deterministic: same seed, same breakdown.
	cfg.Attribution = true
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Attribution, again.Attribution) {
		t.Error("attribution differs between identical seeded runs")
	}
}

// readCSV parses a sampled metrics CSV into its header and rows.
func readCSV(t *testing.T, path string) (header []string, rows [][]string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	header = strings.Split(lines[0], ",")
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if len(cells) != len(header) {
			t.Fatalf("row width %d != header width %d", len(cells), len(header))
		}
		rows = append(rows, cells)
	}
	return header, rows
}

// TestFaultTelemetryReconciles runs a scripted fault schedule with the
// sampler on and checks the fault.* series against Result: the final
// row matches the run's fault counters, an in-outage row shows
// links_down, and the per-link drop attribution is consistent with the
// total drop count.
func TestFaultTelemetryReconciles(t *testing.T) {
	cfg := fastCfg()
	cfg.MetricsOut = filepath.Join(t.TempDir(), "metrics.csv")
	cfg.Faults = "150us fail-link s0p4; 200us fail-switch 3;" +
		" 300us repair-switch 3; 400us repair-link s0p4"
	cfg.Attribution = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedPackets == 0 {
		t.Fatal("schedule dropped nothing; reconciliation is vacuous")
	}

	header, rows := readCSV(t, cfg.MetricsOut)
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("column %q missing from header", name)
		return -1
	}
	last := rows[len(rows)-1]
	finalWant := map[string]int64{
		"fault.link_failures":   res.Faults.LinkFailures,
		"fault.link_repairs":    res.Faults.LinkRepairs,
		"fault.switch_failures": res.Faults.SwitchFailures,
		"fault.switch_repairs":  res.Faults.SwitchRepairs,
		"fault.links_down":      0, // everything repaired by 400us
		"net.dropped_pkts":      res.DroppedPackets,
	}
	for name, want := range finalWant {
		got, err := strconv.ParseFloat(last[col(name)], 64)
		if err != nil {
			t.Fatal(err)
		}
		if int64(got) != want {
			t.Errorf("final %s = %v, want %d", name, got, want)
		}
	}
	// Some mid-run sample lands inside an outage window.
	down := col("fault.links_down")
	maxDown := 0.0
	for _, row := range rows {
		if v, _ := strconv.ParseFloat(row[down], 64); v > maxDown {
			maxDown = v
		}
	}
	if maxDown < 1 {
		t.Errorf("no sampled row saw a link down (max %v); outage spans invisible", maxDown)
	}

	// Per-link attributed drops never exceed the total, and the crash
	// dropped at least some packets with channel context.
	var attributed int64
	for _, la := range res.Attribution {
		attributed += la.Drops
	}
	if attributed <= 0 || attributed > res.DroppedPackets {
		t.Errorf("attributed drops = %d of %d total", attributed, res.DroppedPackets)
	}
}

func TestInspectorEndpoints(t *testing.T) {
	insp, addr, err := StartInspector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Nothing published yet: scrape and snapshot are unavailable, the
	// index and pprof work regardless.
	if code, _ := get("/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("/metrics before any sample = %d, want 503", code)
	}
	if code, _ := get("/snapshot"); code != http.StatusServiceUnavailable {
		t.Errorf("/snapshot before any sample = %d, want 503", code)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/metrics") ||
		!strings.Contains(body, "/flows") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d, want 200", code)
	}

	cfg := fastCfg()
	cfg.Inspector = insp
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	code, scrape := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	for _, want := range []string{
		"# TYPE net_delivered_pkts gauge",
		`link_rate_gbps{link="`,
		"net_latency_us_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q:\n%s", want, scrape[:min(len(scrape), 600)])
		}
	}

	code, snap := get("/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot = %d, want 200", code)
	}
	var doc struct {
		TUs   float64 `json:"t_us"`
		Power struct {
			Measured float64 `json:"measured"`
			Ideal    float64 `json:"ideal"`
		} `json:"power"`
		Links []struct {
			Link     string  `json:"link"`
			RateGbps float64 `json:"rate_gbps"`
			State    string  `json:"state"`
		} `json:"links"`
		Switches []struct {
			ID int `json:"sw"`
		} `json:"switches"`
		Outages []any `json:"outages"`
	}
	if err := json.Unmarshal([]byte(snap), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, snap)
	}
	// The final sample lands at the horizon: warmup + duration.
	if want := (cfg.Warmup + cfg.Duration).Seconds() * 1e6; doc.TUs != want {
		t.Errorf("snapshot t_us = %v, want %v", doc.TUs, want)
	}
	if len(doc.Links) == 0 || len(doc.Switches) == 0 {
		t.Fatalf("snapshot has %d links, %d switches", len(doc.Links), len(doc.Switches))
	}
	if doc.Power.Measured <= 0 || doc.Power.Measured > 1 {
		t.Errorf("snapshot measured power = %v", doc.Power.Measured)
	}
	for _, l := range doc.Links {
		if l.Link == "" || l.RateGbps < 0 || l.State == "" {
			t.Errorf("malformed snapshot link %+v", l)
		}
	}
	if doc.Outages == nil {
		t.Error("outages should render as an empty array, not null")
	}

	// /flows publishes only when flow tracing is on: the plain run above
	// leaves it unavailable with a hint, a traced run fills it.
	if code, body := get("/flows"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "flow trace") {
		t.Errorf("/flows without tracing = %d %q, want 503 + hint", code, body)
	}
	cfg.FlowTrace = true
	cfg.FlowSample = 1
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	code, flows := get("/flows")
	if code != http.StatusOK {
		t.Fatalf("/flows = %d, want 200", code)
	}
	var fdoc FlowTraceReport
	if err := json.Unmarshal([]byte(flows), &fdoc); err != nil {
		t.Fatalf("/flows is not valid JSON: %v\n%s", err, flows)
	}
	if fdoc.Started == 0 || len(fdoc.Classes) == 0 {
		t.Errorf("live flow doc traced nothing: started=%d classes=%d",
			fdoc.Started, len(fdoc.Classes))
	}
}

// TestInspectorPublishDeterministic: the final published scrape and
// snapshot are byte-identical across repeated seeded runs — the
// documents are pure functions of simulation state.
func TestInspectorPublishDeterministic(t *testing.T) {
	final := func() ([]byte, []byte) {
		insp := NewInspector()
		cfg := fastCfg()
		cfg.Inspector = insp
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return insp.PrometheusText(), insp.SnapshotJSON()
	}
	prom1, snap1 := final()
	prom2, snap2 := final()
	if !bytes.Equal(prom1, prom2) {
		t.Error("final Prometheus scrape differs between identical runs")
	}
	if !bytes.Equal(snap1, snap2) {
		t.Error("final snapshot differs between identical runs")
	}
	if len(prom1) == 0 || len(snap1) == 0 {
		t.Error("nothing published")
	}
}

func TestRunWritesHeatmapAndHistogram(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg()
	cfg.HeatmapOut = filepath.Join(dir, "heatmap.csv")
	cfg.HistOut = filepath.Join(dir, "hist.csv")
	cfg.SampleInterval = 50 * time.Microsecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	header, rows := readCSV(t, cfg.HeatmapOut)
	if header[0] != "link" {
		t.Fatalf("heatmap header starts %q", header[0])
	}
	// Columns at 50us..600us; one row per inter-switch channel (a
	// 4-ary 2-flat has 4 switches x 3 peer ports).
	if wantCols := 1 + 12; len(header) != wantCols {
		t.Errorf("heatmap columns = %d, want %d", len(header), wantCols)
	}
	if want := res.Switches * 3; len(rows) != want {
		t.Errorf("heatmap rows = %d, want %d inter-switch channels", len(rows), want)
	}
	var nonzero bool
	for _, row := range rows {
		if !strings.HasPrefix(row[0], "s") {
			t.Errorf("heatmap row label %q is not a link id", row[0])
		}
		for _, cell := range row[1:] {
			u, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatal(err)
			}
			if u < 0 || u > 1 {
				t.Errorf("heatmap cell %v out of [0,1]", u)
			}
			if u > 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Error("heatmap is all zeros; no utilization was recorded")
	}

	hheader, hrows := readCSV(t, cfg.HistOut)
	if strings.Join(hheader, ",") != "le,count,cum_count,cum_fraction" {
		t.Fatalf("histogram header = %v", hheader)
	}
	if want := len(utilBuckets) + 1; len(hrows) != want {
		t.Errorf("histogram rows = %d, want %d buckets", len(hrows), want)
	}
	// Total observations = every heatmap cell.
	lastRow := hrows[len(hrows)-1]
	if cum, _ := strconv.Atoi(lastRow[2]); cum != len(rows)*(len(header)-1) {
		t.Errorf("histogram total %s != heatmap cells %d", lastRow[2], len(rows)*(len(header)-1))
	}
}

// TestGridHeatmapDeterministic: heatmap and histogram files from a
// parallel grid are byte-identical to a serial one, like the metrics
// series.
func TestGridHeatmapDeterministic(t *testing.T) {
	dir := t.TempDir()
	mkCfgs := func(base string) []Config {
		var cfgs []Config
		for _, policy := range []PolicyKind{PolicyHalveDouble, PolicyMinMax} {
			cfg := fastCfg()
			cfg.Policy = policy
			cfgs = append(cfgs, cfg)
		}
		opts := &TelemetryOpts{
			HeatmapOut:     filepath.Join(dir, base+"-heat.csv"),
			HistOut:        filepath.Join(dir, base+"-hist.csv"),
			SampleInterval: 100 * time.Microsecond,
		}
		opts.Apply(cfgs)
		return cfgs
	}
	serial := mkCfgs("serial")
	if _, err := RunGrid(serial, 1); err != nil {
		t.Fatal(err)
	}
	par := mkCfgs("par")
	if _, err := RunGrid(par, 4); err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		for _, pair := range [][2]string{
			{serial[i].HeatmapOut, par[i].HeatmapOut},
			{serial[i].HistOut, par[i].HistOut},
		} {
			a, err := os.ReadFile(pair[0])
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(pair[1])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("run %d: parallel %s differs from serial %s", i, pair[1], pair[0])
			}
		}
	}
}

// TestRunReportsTelemetryWriteErrors: a telemetry sink that fails to
// write (here /dev/full's ENOSPC) surfaces as an error from Run
// instead of silently truncating the output.
func TestRunReportsTelemetryWriteErrors(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	for _, field := range []string{"trace", "metrics", "heatmap"} {
		t.Run(field, func(t *testing.T) {
			cfg := fastCfg()
			switch field {
			case "trace":
				cfg.TraceOut = "/dev/full"
			case "metrics":
				cfg.MetricsOut = "/dev/full"
			case "heatmap":
				cfg.HeatmapOut = "/dev/full"
			}
			if _, err := Run(cfg); err == nil {
				t.Errorf("%s output to /dev/full succeeded; write failure swallowed", field)
			}
		})
	}
}
