package epnet

import (
	"bytes"
	"embed"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"epnet/internal/core"
	"epnet/internal/fabric"
	"epnet/internal/fault"
	"epnet/internal/link"
	"epnet/internal/scenario"
	"epnet/internal/sim"
	"epnet/internal/stats"
	"epnet/internal/traffic"
)

// The scenario DSL lives in internal/scenario; these aliases are its
// public face, so callers compose scenarios without a second import.
type (
	// Scenario is a versioned, declarative run description: named
	// phases of traffic, policy switches, and chaos campaigns.
	Scenario = scenario.Scenario
	// ScenarioPhase is one named phase.
	ScenarioPhase = scenario.Phase
	// PhaseTraffic is one traffic stream within a phase.
	PhaseTraffic = scenario.Traffic
	// LoadShape modulates a stream's load over its phase.
	LoadShape = scenario.Shape
	// PhasePolicy switches the link control policy at a phase boundary.
	PhasePolicy = scenario.Policy
	// PhaseChaos is a phase's fault campaign.
	PhaseChaos = scenario.Chaos
	// ChaosGroup declares a correlated failure domain.
	ChaosGroup = scenario.Group
)

// ParseScenario parses and validates a scenario document.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

//go:embed scenarios/*.json
var scenarioFS embed.FS

// ScenarioNames lists the embedded scenario library, sorted.
func ScenarioNames() []string {
	ents, err := scenarioFS.ReadDir("scenarios")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(ents))
	for _, ent := range ents {
		names = append(names, strings.TrimSuffix(ent.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// ScenarioDoc returns an embedded scenario's one-line description, or
// "" for unknown names.
func ScenarioDoc(name string) string {
	data, err := scenarioFS.ReadFile("scenarios/" + name + ".json")
	if err != nil {
		return ""
	}
	s, err := scenario.Parse(data)
	if err != nil {
		return ""
	}
	return s.Notes
}

// LoadScenario resolves ref — an embedded library name, a Preset name
// (wrapped as a single-phase scenario), or a scenario file path, in
// that order — applies the scenario's config overrides on top of base,
// and returns the resulting Config with the scenario attached. The
// precedence story for callers layering flags on top: base, then the
// scenario's config block, then whatever the caller sets afterwards.
func LoadScenario(ref string, base Config) (Config, error) {
	if data, err := scenarioFS.ReadFile("scenarios/" + ref + ".json"); err == nil {
		s, err := scenario.Parse(data)
		if err != nil {
			return Config{}, fmt.Errorf("epnet: embedded scenario %q: %w", ref, err)
		}
		return applyScenario(base, s)
	}
	if p, err := Preset(ref); err == nil {
		// A preset reference adopts the preset's whole Config — the
		// preset replaces base, exactly like the -preset flag does.
		return applyScenario(p, presetScenario(ref, p))
	}
	data, err := os.ReadFile(ref)
	if err != nil {
		return Config{}, fmt.Errorf("epnet: scenario %q is not an embedded scenario, a preset, or a readable file: %w", ref, err)
	}
	s, err := scenario.Parse(data)
	if err != nil {
		return Config{}, fmt.Errorf("epnet: scenario %s: %w", ref, err)
	}
	return applyScenario(base, s)
}

// applyScenario overlays s's config block onto base (strictly — unknown
// fields reject) and attaches the scenario. The config block is cleared
// once merged: its settings now live in the Config fields themselves,
// and keeping a second copy would let the two drift.
func applyScenario(base Config, s *Scenario) (Config, error) {
	cfg := base
	if len(s.Config) > 0 {
		if err := cfg.UnmarshalJSON(s.Config); err != nil {
			return Config{}, fmt.Errorf("epnet: scenario %q config: %w", s.Name, err)
		}
		s.Config = nil
	}
	if cfg.Scenario != nil {
		return Config{}, fmt.Errorf("epnet: scenario %q config block may not itself carry a scenario", s.Name)
	}
	cfg.Scenario = s
	return cfg, nil
}

// presetScenario wraps a Preset's Config as the equivalent single-phase
// scenario, which makes every preset loadable wherever a scenario is.
func presetScenario(name string, p Config) *Scenario {
	ph := ScenarioPhase{
		Name:     "steady",
		Duration: Duration(p.Duration),
	}
	if p.Workload != WorkloadTrace {
		ph.Traffic = []PhaseTraffic{{Workload: string(p.Workload), Load: p.Load}}
	}
	return &Scenario{
		Version: scenario.Version,
		Name:    name,
		Notes:   PresetDoc(name),
		Phases:  []ScenarioPhase{ph},
	}
}

// validateScenario is Config.Validate's scenario hook: it validates the
// document, checks phase policies against this package's policy enum
// (the DSL package doesn't own it), derives Duration from the phase
// durations, and mirrors the first phase's first stream and policy into
// the legacy Workload/Load/Policy/TargetUtil fields so a single-phase
// scenario is indistinguishable from the flag-configured run.
func (c *Config) validateScenario() error {
	s := c.Scenario
	if err := s.Validate(); err != nil {
		return fieldErr("Scenario", "%v", err)
	}
	for i := range s.Phases {
		ph := &s.Phases[i]
		if ph.Policy == nil {
			continue
		}
		switch PolicyKind(ph.Policy.Kind) {
		case PolicyBaseline, PolicyHalveDouble, PolicyMinMax, PolicyHysteresis,
			PolicyStaticMin, PolicyQueueAware:
		default:
			return enumErr(ErrUnknownPolicy, "Scenario",
				"phase %q: unknown policy %q", ph.Name, ph.Policy.Kind)
		}
	}
	c.Duration = s.TotalDuration()
	ph0 := &s.Phases[0]
	if len(ph0.Traffic) > 0 {
		c.Workload = WorkloadKind(ph0.Traffic[0].Workload)
		c.Load = ph0.Traffic[0].Load
	}
	if ph0.Policy != nil {
		c.Policy = PolicyKind(ph0.Policy.Kind)
		if ph0.Policy.TargetUtil > 0 {
			c.TargetUtil = ph0.Policy.TargetUtil
		}
	}
	return nil
}

// scenarioHasChaos reports whether any phase runs a fault campaign.
func scenarioHasChaos(s *Scenario) bool {
	for i := range s.Phases {
		if s.Phases[i].Chaos != nil {
			return true
		}
	}
	return false
}

// execPhase is one phase resolved against a run: absolute engine times
// and constructed sources. Phase 0 starts at t=0 — it owns the warmup
// ramp, exactly like a flag-configured workload — and each later phase
// starts where the previous one's measured slice ends.
type execPhase struct {
	name       string
	start, end sim.Time
	sources    []scenario.Source
	policy     *PhasePolicy
	chaos      *PhaseChaos
}

// runPlan is a Config resolved into executable phases. Every run has
// one — a flag-configured run is the implicit single steady phase —
// so there is exactly one traffic codepath.
type runPlan struct {
	phases []execPhase
	// multi enables the phase machinery (boundary snapshots, per-phase
	// latency recorders, the scorecard). Single-phase plans add no
	// events at all, keeping them byte-identical to the pre-scenario
	// engine behavior.
	multi bool
	// policySwitch is set when a phase after the first changes policy;
	// it forces the epoch controller on even under baseline/static-min.
	policySwitch bool
	hasChaos     bool
}

// streamSeed derives the seed for traffic stream idx of phase i. The
// very first stream uses the run seed verbatim — that is what makes a
// single-phase scenario reproduce the equivalent flag run byte for
// byte; every other stream derives position-independently from its
// phase name, so editing one phase never perturbs another's traffic.
func streamSeed(seed int64, phase int, name string, idx int) int64 {
	if phase == 0 && idx == 0 {
		return seed
	}
	return scenario.PhaseSeed(seed, name, fmt.Sprintf("traffic:%d", idx))
}

// buildPlan resolves cfg into its executable phases. warmup and horizon
// are the run's absolute boundaries.
func buildPlan(cfg Config, warmup, horizon sim.Time) (*runPlan, error) {
	if cfg.Scenario == nil {
		src, err := implicitSource(cfg)
		if err != nil {
			return nil, err
		}
		return &runPlan{phases: []execPhase{{
			name:    "steady",
			start:   0,
			end:     horizon,
			sources: []scenario.Source{src},
		}}}, nil
	}

	s := cfg.Scenario
	plan := &runPlan{multi: len(s.Phases) > 1, hasChaos: scenarioHasChaos(s)}
	at := sim.Time(0)
	for i := range s.Phases {
		ph := &s.Phases[i]
		ep := execPhase{name: ph.Name, start: at, policy: ph.Policy, chaos: ph.Chaos}
		ep.end = at + simTime(ph.Duration.D())
		if i == 0 {
			// Phase 0 spans warmup plus its measured duration.
			ep.end += warmup
		}
		at = ep.end
		for j, spec := range ph.Traffic {
			src, err := scenario.NewSource(spec, streamSeed(cfg.Seed, i, ph.Name, j))
			if err != nil {
				return nil, fieldErr("Scenario", "phase %q: %v", ph.Name, err)
			}
			ep.sources = append(ep.sources, src)
		}
		if i > 0 && ph.Policy != nil {
			plan.policySwitch = true
		}
		plan.phases = append(plan.phases, ep)
	}
	if at != horizon {
		// Unreachable: Validate derived Duration from the same sum.
		return nil, fieldErr("Scenario", "phase durations sum to %v, window is %v",
			toDuration(at), toDuration(horizon))
	}
	return plan, nil
}

// implicitSource wraps the legacy single-workload Config fields as one
// streaming source — the same constructors a scenario phase uses.
func implicitSource(cfg Config) (scenario.Source, error) {
	if cfg.Workload == WorkloadTrace {
		f, err := os.Open(cfg.TracePath)
		if err != nil {
			return nil, fmt.Errorf("epnet: opening trace: %w", err)
		}
		defer f.Close()
		recs, err := traffic.ReadTrace(f)
		if err != nil {
			return nil, err
		}
		return scenario.FromWorkload(&traffic.Replay{Label: cfg.TracePath, Records: recs}), nil
	}
	return scenario.NewSource(
		scenario.Traffic{Workload: string(cfg.Workload), Load: cfg.Load}, cfg.Seed)
}

// start launches phase 0's sources inline (the engine is at t=0, the
// exact call site the single-workload path used) and schedules each
// later phase's traffic and policy switch at its boundary — control
// events, so sharded runs stay byte-identical across shard counts.
func (p *runPlan) start(e *sim.Engine, net *fabric.Network, ctrl *core.Controller, ladder link.RateLadder) {
	for _, src := range p.phases[0].sources {
		src.Run(e, net, 0, p.phases[0].end)
	}
	for i := 1; i < len(p.phases); i++ {
		ph := p.phases[i]
		e.At(ph.start, func(now sim.Time) {
			if ph.policy != nil && ctrl != nil {
				ctrl.Policy = resolveCorePolicy(PolicyKind(ph.policy.Kind), ph.policy.TargetUtil, ladder)
			}
			for _, src := range ph.sources {
				src.Run(e, net, now, ph.end)
			}
		})
	}
}

// resolveCorePolicy maps a policy kind to its core implementation. The
// always-on baseline and static-min become Static pins so a scenario
// can switch into and out of them mid-run under a live controller.
func resolveCorePolicy(kind PolicyKind, target float64, ladder link.RateLadder) core.Policy {
	if target == 0 {
		target = 0.5
	}
	switch kind {
	case PolicyBaseline:
		return core.Static{Rate: ladder.Max()}
	case PolicyStaticMin:
		return core.Static{Rate: ladder.Min()}
	case PolicyMinMax:
		return core.MinMax{Target: target}
	case PolicyHysteresis:
		return core.Hysteresis{Target: target}
	case PolicyQueueAware:
		return core.QueueAware{Target: target, BurstBytes: 64 * 1024}
	default:
		return core.HalveDouble{Target: target}
	}
}

// scheduleChaos schedules every phase's fault campaign. Scripted events
// offset from the phase's measured start (max(phase start, warmup) —
// phase 0 scripts line up with the legacy Faults schedule); the random
// and correlated processes run over the phase's measured slice, each
// seeded from the phase name so campaigns are position-independent too.
func scheduleChaos(cfg Config, plan *runPlan, inj *fault.Injector, warmup sim.Time) error {
	for i := range plan.phases {
		ph := &plan.phases[i]
		if ph.chaos == nil {
			continue
		}
		start := ph.start
		if start < warmup {
			start = warmup
		}
		ch := ph.chaos
		if ch.Script != "" {
			sched, err := fault.ParseSchedule(ch.Script)
			if err != nil {
				return fieldErr("Scenario", "phase %q chaos: %v", ph.name, err) // unreachable: Validate parsed it
			}
			if err := inj.Apply(start, sched); err != nil {
				return fieldErr("Scenario", "phase %q chaos: %v", ph.name, err)
			}
		}
		if ch.Rate > 0 {
			inj.StartRandom(start, ph.end, ch.Rate, chaosMTTR(ch.MTTR),
				scenario.PhaseSeed(cfg.Seed, ph.name, "chaos"))
		}
		if ch.GroupRate > 0 {
			groups, err := resolveGroups(inj, ph.name, ch.Groups)
			if err != nil {
				return err
			}
			inj.StartCorrelated(start, ph.end, groups, ch.GroupRate, chaosMTTR(ch.GroupMTTR),
				scenario.PhaseSeed(cfg.Seed, ph.name, "chaos-groups"))
		}
	}
	return nil
}

// chaosMTTR applies the FaultMTTR default to an unset chaos MTTR.
func chaosMTTR(d scenario.Duration) sim.Time {
	if d <= 0 {
		return simTime(200 * time.Microsecond)
	}
	return simTime(d.D())
}

// resolveGroups expands a phase's correlated-group declarations against
// the live fabric.
func resolveGroups(inj *fault.Injector, phase string, specs []ChaosGroup) ([]fault.Group, error) {
	var out []fault.Group
	for _, g := range specs {
		switch g.Kind {
		case scenario.GroupRackPower:
			out = append(out, inj.RackDomains(g.Size)...)
		case scenario.GroupOpticsBundle:
			out = append(out, inj.OpticsBundles(g.Size)...)
		case scenario.GroupSwitches:
			grp, err := inj.SwitchGroup(fmt.Sprintf("%s/switches", phase), g.Switches)
			if err != nil {
				return nil, fieldErr("Scenario", "phase %q chaos: %v", phase, err)
			}
			out = append(out, grp)
		default:
			return nil, fieldErr("Scenario", "phase %q chaos: unknown group kind %q", phase, g.Kind) // unreachable: Validate checked it
		}
	}
	return out, nil
}

// ScorecardCSV renders the per-phase scorecard as CSV — one row per
// phase with the resilience (delivery, faults), energy (utilization),
// and flow-trace decomposition columns (zero when flow tracing is
// off). Empty for single-phase runs, which have no scorecard. New
// columns append on the right only — existing column positions are
// stable, which downstream golden files pin.
func (r *Result) ScorecardCSV() []byte {
	var b bytes.Buffer
	b.WriteString("phase,start_us,end_us,injected,delivered,dropped,delivered_frac," +
		"mean_latency_us,p99_latency_us,avg_util,reconfigs,fault_events," +
		"traced,traced_dropped,queue_us,credit_us,retune_us,busy_us," +
		"cutthrough_us,serialize_us,wire_us,route_us,energy_pj_per_bit\n")
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }
	for _, ps := range r.PhaseScores {
		fmt.Fprintf(&b, "%s,%.3f,%.3f,%d,%d,%d,%.5f,%.3f,%.3f,%.4f,%d,%d,"+
			"%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.4f\n",
			ps.Phase,
			us(ps.Start), us(ps.End),
			ps.InjectedPackets, ps.DeliveredPackets, ps.DroppedPackets,
			ps.DeliveredFraction,
			us(ps.MeanLatency), us(ps.P99Latency),
			ps.AvgUtil, ps.Reconfigurations, ps.FaultEvents,
			ps.TracedPackets, ps.TracedDropped,
			us(ps.QueueWait), us(ps.CreditStall), us(ps.RetuneStall), us(ps.BusyWait),
			us(ps.CutThroughWait), us(ps.SerializeTime), us(ps.WireTime), us(ps.RouteTime),
			ps.EnergyPJPerBit)
	}
	return b.Bytes()
}

// phaseAccounting is the per-phase scorecard machinery of a multi-phase
// run: counter snapshots at measured phase boundaries plus per-phase,
// per-shard latency recorders. Single-phase plans never construct one,
// so they add no events and no per-delivery work — their results stay
// byte-identical to the pre-scenario engine behavior.
type phaseAccounting struct {
	plan *runPlan
	net  *fabric.Network
	ctrl *core.Controller
	inj  *fault.Injector
	// snaps[i] is the counter state at phase i's measured start;
	// snaps[len(phases)] at the horizon.
	snaps []phaseSnap
	// lats[shard][phase] records latencies of measured packets by the
	// phase they were injected in. Per-shard because delivery callbacks
	// run on the shard owning the destination host.
	lats [][]*stats.Latency
}

type phaseSnap struct {
	injected, delivered, dropped int64
	deliveredBytes               int64
	reconfigs, faultEvents       int64
}

func newPhaseAccounting(plan *runPlan, net *fabric.Network, ctrl *core.Controller, inj *fault.Injector) *phaseAccounting {
	a := &phaseAccounting{
		plan:  plan,
		net:   net,
		ctrl:  ctrl,
		inj:   inj,
		snaps: make([]phaseSnap, len(plan.phases)+1),
		lats:  make([][]*stats.Latency, net.NumShards()),
	}
	for i := range a.lats {
		a.lats[i] = make([]*stats.Latency, len(plan.phases))
		for j := range a.lats[i] {
			a.lats[i][j] = stats.NewLatency()
		}
	}
	return a
}

// schedule puts the inner-boundary snapshot events on the control
// engine. Call before the plan's phase events are scheduled so the
// snapshots run first at coincident timestamps (the engine breaks ties
// FIFO) — not that order matters for the counters, since phase starts
// inject nothing at their own instant, but the invariant is cheap to
// keep and saves reasoning about it.
func (a *phaseAccounting) schedule(e *sim.Engine) {
	for i := 1; i < len(a.plan.phases); i++ {
		i := i
		e.At(a.plan.phases[i].start, func(sim.Time) { a.snaps[i] = a.snapshot() })
	}
}

// record classifies one measured delivery by the phase it was delivered
// in — the same clock the boundary snapshots cut on, which keeps every
// scorecard row a pure function of events up to its phase end (so
// appending phases never changes earlier rows). Runs on the destination
// shard's hot path: no allocation, a handful of compares (phase counts
// are small).
func (a *phaseAccounting) record(shard int, inject, lat sim.Time) {
	at := inject + lat
	idx := 0
	for idx < len(a.plan.phases)-1 && at >= a.plan.phases[idx].end {
		idx++
	}
	a.lats[shard][idx].Add(lat)
}

func (a *phaseAccounting) snapshot() phaseSnap {
	s := phaseSnap{}
	s.injected, _ = a.net.Injected()
	s.delivered, s.deliveredBytes = a.net.Delivered()
	s.dropped, _ = a.net.Dropped()
	if a.ctrl != nil {
		s.reconfigs = a.ctrl.Reconfigurations
	}
	if a.inj != nil {
		s.faultEvents = FaultStats(a.inj.Stats).Total()
	}
	return s
}

// scores folds the snapshots and recorders into the Result scorecard.
func (a *phaseAccounting) scores(warmup sim.Time, hosts int, ladder link.RateLadder) []PhaseScore {
	out := make([]PhaseScore, len(a.plan.phases))
	for i := range a.plan.phases {
		ph := &a.plan.phases[i]
		s0, s1 := a.snaps[i], a.snaps[i+1]
		start := ph.start
		if start < warmup {
			start = warmup
		}
		lat := stats.NewLatency()
		for _, shard := range a.lats {
			lat.Merge(shard[i])
		}
		sc := PhaseScore{
			Phase:            ph.name,
			Start:            toDuration(start),
			End:              toDuration(ph.end),
			InjectedPackets:  s1.injected - s0.injected,
			DeliveredPackets: s1.delivered - s0.delivered,
			DroppedPackets:   s1.dropped - s0.dropped,
			DeliveredBytes:   s1.deliveredBytes - s0.deliveredBytes,
			MeanLatency:      toDuration(lat.Mean()),
			P99Latency:       toDuration(lat.Percentile(99)),
			Reconfigurations: s1.reconfigs - s0.reconfigs,
			FaultEvents:      s1.faultEvents - s0.faultEvents,
		}
		sc.DeliveredFraction = 1.0
		if sc.DroppedPackets > 0 {
			sc.DeliveredFraction = float64(sc.DeliveredPackets) /
				float64(sc.DeliveredPackets+sc.DroppedPackets)
		}
		if capBytes := float64(hosts) * float64(ladder.Max()) / 8 * toDuration(ph.end-start).Seconds(); capBytes > 0 {
			sc.AvgUtil = float64(sc.DeliveredBytes) / capBytes
		}
		out[i] = sc
	}
	return out
}
