package epnet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunProfileSharded checks the Result.Profile surface on a sharded
// run: opt-in only, one entry per shard, and the aggregates describe a
// run that actually happened (rounds turned, events were attributed,
// cross-shard traffic moved, the partition fields are filled in).
func TestRunProfileSharded(t *testing.T) {
	cfg := fastCfg()
	cfg.Shards = 2
	cfg.Profile = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p == nil {
		t.Fatal("Config.Profile set but Result.Profile is nil")
	}
	if len(p.Shards) != 2 {
		t.Fatalf("profile has %d shards, want 2", len(p.Shards))
	}
	if p.Rounds == 0 || p.Wall <= 0 || p.CriticalPath <= 0 {
		t.Errorf("rounds %d, wall %v, critical path %v: want all > 0", p.Rounds, p.Wall, p.CriticalPath)
	}
	if p.TotalEvents() == 0 {
		t.Error("profile attributed no data-plane events")
	}
	if p.BarrierOverhead < 0 || p.BarrierOverhead > 1 ||
		p.WindowEfficiency < 0 || p.WindowEfficiency > 1 {
		t.Errorf("barrier overhead %v / window efficiency %v out of [0, 1]",
			p.BarrierOverhead, p.WindowEfficiency)
	}
	if ev, by := p.ExchangeTotals(); ev == 0 || by == 0 {
		t.Errorf("exchange totals = (%d events, %d bytes), want both > 0", ev, by)
	}
	if p.CutChannels == 0 || p.TotalChannels == 0 || p.LookaheadMin <= 0 {
		t.Errorf("partition fields: cut %d/%d, lookahead min %v",
			p.CutChannels, p.TotalChannels, p.LookaheadMin)
	}

	// Off by default.
	plain, err := Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Profile != nil {
		t.Error("Result.Profile populated without opting in")
	}
}

// TestRunProfileSerial checks the degenerate serial profile: no rounds,
// all busy time on shard 0.
func TestRunProfileSerial(t *testing.T) {
	cfg := fastCfg()
	cfg.Shards = 1
	cfg.Profile = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p == nil {
		t.Fatal("Result.Profile is nil")
	}
	if len(p.Shards) != 1 || p.Rounds != 0 {
		t.Errorf("serial profile: %d shards, %d rounds, want 1 and 0", len(p.Shards), p.Rounds)
	}
	if p.Shards[0].BusyWall <= 0 || p.Shards[0].Events == 0 {
		t.Errorf("serial shard 0: busy %v, %d events, want both > 0",
			p.Shards[0].BusyWall, p.Shards[0].Events)
	}
}

// TestProfileOutFormats checks the -profile-out exporter: ProfileOut
// alone enables profiling, a .json path gets indented JSON that decodes
// back into an EngineProfile, and a .csv path gets the summary + table
// form.
func TestProfileOutFormats(t *testing.T) {
	dir := t.TempDir()

	cfg := fastCfg()
	cfg.Shards = 2
	cfg.ProfileOut = filepath.Join(dir, "profile.json")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("ProfileOut alone did not enable profiling")
	}
	data, err := os.ReadFile(cfg.ProfileOut)
	if err != nil {
		t.Fatal(err)
	}
	var decoded EngineProfile
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("profile JSON does not decode: %v", err)
	}
	if len(decoded.Shards) != 2 || decoded.Rounds != res.Profile.Rounds {
		t.Errorf("decoded profile: %d shards, %d rounds; Result.Profile has %d, %d",
			len(decoded.Shards), decoded.Rounds, len(res.Profile.Shards), res.Profile.Rounds)
	}

	cfg.ProfileOut = filepath.Join(dir, "profile.csv")
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(cfg.ProfileOut)
	if err != nil {
		t.Fatal(err)
	}
	text := string(csv)
	if !strings.HasPrefix(text, "# rounds=") {
		t.Errorf("profile CSV does not start with the summary comment:\n%s", text)
	}
	if !strings.Contains(text, "shard,busy_wall_ns,barrier_wait_ns") {
		t.Errorf("profile CSV missing the per-shard header:\n%s", text)
	}
	// Header + 2 shard rows + 3 summary comments.
	if lines := strings.Count(strings.TrimRight(text, "\n"), "\n") + 1; lines != 6 {
		t.Errorf("profile CSV has %d lines, want 6", lines)
	}
}

// TestProfileReport checks the human-readable critical-path report the
// epsim -profile flag prints.
func TestProfileReport(t *testing.T) {
	cfg := fastCfg()
	cfg.Shards = 2
	cfg.Profile = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Profile.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	report := buf.String()
	for _, want := range []string{
		"engine profile: 2 shard(s)",
		"critical path",
		"barrier overhead",
		"partition:",
		"window efficiency",
		"cross-shard exchange:",
		"weff", // per-shard table header
		"critical path (ranked):",
		"set the barrier",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestPartition checks the epsim -v startup helper: the serial
// degenerate form, and a sharded partition whose cut, lookahead range,
// and matrix are consistent.
func TestPartition(t *testing.T) {
	cfg := fastCfg()
	cfg.Shards = 1
	info, err := Partition(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 1 || info.String() != "shards=1 (serial engine)" {
		t.Errorf("serial partition: %+v, String %q", info, info.String())
	}

	cfg.Shards = 2
	info, err = Partition(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 2 {
		t.Fatalf("Shards = %d, want 2", info.Shards)
	}
	if info.CutChannels == 0 || info.CutChannels > info.TotalChannels {
		t.Errorf("cut = %d/%d, want a nonzero cut within the total",
			info.CutChannels, info.TotalChannels)
	}
	if info.LookaheadMin <= 0 || info.LookaheadMax < info.LookaheadMin {
		t.Errorf("lookahead range = %v..%v", info.LookaheadMin, info.LookaheadMax)
	}
	if f := info.CutFraction(); f <= 0 || f > 1 {
		t.Errorf("CutFraction = %v", f)
	}
	if len(info.Lookahead) != 2 || len(info.Lookahead[0]) != 2 {
		t.Fatalf("lookahead matrix shape %dx?, want 2x2", len(info.Lookahead))
	}
	for i, row := range info.Lookahead {
		for j, v := range row {
			if v <= 0 {
				t.Errorf("lookahead[%d][%d] = %v, want > 0 on a clique", i, j, v)
			}
		}
	}
	for _, want := range []string{"shards=2", "cut=", "lookahead="} {
		if !strings.Contains(info.String(), want) {
			t.Errorf("String() = %q missing %q", info.String(), want)
		}
	}
}

// TestInspectorProfileEndpoint checks the live /profile surface: 503
// until a profiled run publishes, then the current profile as JSON.
func TestInspectorProfileEndpoint(t *testing.T) {
	insp, addr, err := StartInspector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/profile"); code != http.StatusServiceUnavailable {
		t.Errorf("/profile before any run = %d, want 503", code)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/profile") {
		t.Errorf("index does not list /profile: %d %q", code, body)
	}

	// A run without profiling publishes metrics but no profile document.
	cfg := fastCfg()
	cfg.Inspector = insp
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if code, _ := get("/profile"); code != http.StatusServiceUnavailable {
		t.Errorf("/profile after an unprofiled run = %d, want 503", code)
	}

	cfg.Shards = 2
	cfg.Profile = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	code, body := get("/profile")
	if code != http.StatusOK {
		t.Fatalf("/profile after a profiled run = %d, want 200", code)
	}
	var doc EngineProfile
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/profile is not valid JSON: %v\n%s", err, body)
	}
	if len(doc.Shards) != 2 {
		t.Errorf("/profile has %d shards, want 2", len(doc.Shards))
	}
	if doc.Wall <= 0 {
		t.Errorf("/profile wall = %v, want > 0", doc.Wall)
	}
}
