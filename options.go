package epnet

import (
	"fmt"
	"sort"
	"time"
)

// Option mutates a Config under construction; see NewConfig. Options
// compose left to right, so later options win on overlapping fields.
type Option func(*Config)

// NewConfig builds a Config for the given topology from the library
// defaults (DefaultConfig) and the supplied options:
//
//	cfg := epnet.NewConfig(epnet.TopoFBFLY,
//		epnet.WithRadix(8),
//		epnet.WithPolicy(epnet.PolicyHalveDouble),
//		epnet.WithWorkload(epnet.WorkloadSearch),
//	)
//
// The result still goes through Config.Validate inside Run, so an
// inconsistent combination fails there with a *ConfigFieldError rather
// than panicking here.
func NewConfig(topology TopologyKind, opts ...Option) Config {
	cfg := DefaultConfig()
	cfg.Topology = topology
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithShape sets the full k-ary n-flat shape: radix per dimension k,
// dimensions n (including the host dimension), and concentration c.
func WithShape(k, n, c int) Option {
	return func(cfg *Config) { cfg.K, cfg.N, cfg.C = k, n, c }
}

// WithRadix sets the switch radix per dimension (FBFLY k, fat-tree
// leaf/spine count, Clos3 chip radix) and matches the concentration to
// it — the paper's balanced c = k design point. Use WithShape or
// WithConcentration for unbalanced shapes.
func WithRadix(k int) Option {
	return func(cfg *Config) { cfg.K, cfg.C = k, k }
}

// WithConcentration sets the number of hosts per switch.
func WithConcentration(c int) Option {
	return func(cfg *Config) { cfg.C = c }
}

// WithDimensions sets the FBFLY dimension count n.
func WithDimensions(n int) Option {
	return func(cfg *Config) { cfg.N = n }
}

// WithWorkload selects the offered traffic.
func WithWorkload(w WorkloadKind) Option {
	return func(cfg *Config) { cfg.Workload = w }
}

// WithLoad overrides the workload's default average utilization.
func WithLoad(load float64) Option {
	return func(cfg *Config) { cfg.Load = load }
}

// WithTraceReplay selects trace replay of the given file (the binary
// format written by cmd/tracegen).
func WithTraceReplay(path string) Option {
	return func(cfg *Config) { cfg.Workload, cfg.TracePath = WorkloadTrace, path }
}

// WithPolicy selects the link control policy.
func WithPolicy(p PolicyKind) Option {
	return func(cfg *Config) { cfg.Policy = p }
}

// WithTargetUtil sets the policy's target channel utilization.
func WithTargetUtil(target float64) Option {
	return func(cfg *Config) { cfg.TargetUtil = target }
}

// WithIndependentChannels tunes the two unidirectional channels of each
// link independently (§3.3.1) instead of pairing them.
func WithIndependentChannels() Option {
	return func(cfg *Config) { cfg.Independent = true }
}

// WithRouting selects adaptive or dimension-order routing.
func WithRouting(r RoutingKind) Option {
	return func(cfg *Config) { cfg.Routing = r }
}

// WithReactivation sets the link reconfiguration penalty and scales the
// epoch to the paper's 10x rule (§4.2.2).
func WithReactivation(d time.Duration) Option {
	return func(cfg *Config) { cfg.Reactivation, cfg.Epoch = d, 10*d }
}

// WithEpoch sets the utilization measurement window directly.
func WithEpoch(d time.Duration) Option {
	return func(cfg *Config) { cfg.Epoch = d }
}

// WithModeAwareReactivation charges the SerDes model's per-transition
// penalties (CDR re-lock vs lane retraining, §3.1).
func WithModeAwareReactivation() Option {
	return func(cfg *Config) { cfg.ModeAwareReactivation = true }
}

// WithDynTopo enables the §5.1 dynamic topology controller.
func WithDynTopo() Option {
	return func(cfg *Config) { cfg.DynTopo = true }
}

// WithWindow sets the warmup and measurement durations.
func WithWindow(warmup, duration time.Duration) Option {
	return func(cfg *Config) { cfg.Warmup, cfg.Duration = warmup, duration }
}

// WithSeed sets the run's random seed.
func WithSeed(seed int64) Option {
	return func(cfg *Config) { cfg.Seed = seed }
}

// WithShards partitions the simulation across n windowed workers (see
// Config.Shards): 0 = auto (one per CPU, capped by topology size),
// 1 = serial. Results stay byte-identical to the serial run.
func WithShards(n int) Option {
	return func(cfg *Config) { cfg.Shards = n }
}

// WithFaultSchedule installs a deterministic fault schedule (see
// Config.Faults for the grammar).
func WithFaultSchedule(schedule string) Option {
	return func(cfg *Config) { cfg.Faults = schedule }
}

// WithFaultRate enables seeded-random faults at rate events per
// simulated millisecond, repaired after a mean time of mttr (zero means
// the 200 µs default).
func WithFaultRate(rate float64, mttr time.Duration) Option {
	return func(cfg *Config) { cfg.FaultRate, cfg.FaultMTTR = rate, mttr }
}

// WithLinkFailures abruptly fails count inter-switch link pairs, after
// the given offset into the measurement window (zero means a quarter of
// Duration) — the §1 failure-domain experiment.
func WithLinkFailures(count int, after time.Duration) Option {
	return func(cfg *Config) { cfg.FailLinks, cfg.FailAfter = count, after }
}

// WithMetrics writes the sampled telemetry series to path, sampling
// every interval (zero means one epoch).
func WithMetrics(path string, interval time.Duration) Option {
	return func(cfg *Config) { cfg.MetricsOut, cfg.SampleInterval = path, interval }
}

// WithChromeTrace streams a Chrome trace_event file to path.
func WithChromeTrace(path string) Option {
	return func(cfg *Config) { cfg.TraceOut = path }
}

// WithHeatmap writes the per-link utilization x time heatmap CSV to
// path at the end of the run.
func WithHeatmap(path string) Option {
	return func(cfg *Config) { cfg.HeatmapOut = path }
}

// WithUtilHistogram writes the link-utilization histogram CSV (the
// paper's Fig 8 view) to path at the end of the run.
func WithUtilHistogram(path string) Option {
	return func(cfg *Config) { cfg.HistOut = path }
}

// WithAttribution populates Result.Attribution with the per-channel
// energy/utilization breakdown.
func WithAttribution() Option {
	return func(cfg *Config) { cfg.Attribution = true }
}

// WithInspector publishes live Prometheus scrapes and per-entity JSON
// snapshots to insp at every sample tick (see StartInspector).
func WithInspector(insp *Inspector) Option {
	return func(cfg *Config) { cfg.Inspector = insp }
}

// WithProfile enables engine self-profiling: Result.Profile reports
// per-shard busy/wait/idle wall time, window efficiency, the
// cross-shard exchange matrix, and the critical-path laggard table.
func WithProfile() Option {
	return func(cfg *Config) { cfg.Profile = true }
}

// WithProfileOut enables engine self-profiling and writes the profile
// to path (JSON, or CSV when the path ends in ".csv").
func WithProfileOut(path string) Option {
	return func(cfg *Config) { cfg.ProfileOut = path }
}

// WithFlowTrace enables flow tracing: hash-sampled packets carry
// per-hop latency decompositions into Result.FlowTrace.
func WithFlowTrace() Option {
	return func(cfg *Config) { cfg.FlowTrace = true }
}

// WithFlowSample enables flow tracing at the given sample rate in
// (0,1] — the expected fraction of packets traced.
func WithFlowSample(rate float64) Option {
	return func(cfg *Config) { cfg.FlowTrace = true; cfg.FlowSample = rate }
}

// WithFlowsOut enables flow tracing and writes the report to path
// (JSON, or a per-phase CSV when the path ends in ".csv").
func WithFlowsOut(path string) Option {
	return func(cfg *Config) { cfg.FlowsOut = path }
}

// WithPowerTrace samples instantaneous power into Result.PowerTrace at
// the given interval.
func WithPowerTrace(interval time.Duration) Option {
	return func(cfg *Config) { cfg.PowerSampleEvery = interval }
}

// presets are the named paper-system configurations, lazily built so a
// preset always reflects the current library defaults.
var presets = map[string]struct {
	doc   string
	build func() Config
}{
	"small-fbfly": {
		"8-ary 2-flat (64 hosts), Search workload, halve/double — the fast default",
		func() Config { return NewConfig(TopoFBFLY) },
	},
	"paper-fbfly": {
		"the paper's simulated system: 15-ary 3-flat, 3,375 hosts (§4)",
		func() Config { return NewConfig(TopoFBFLY, WithRadix(15), WithDimensions(3)) },
	},
	"paper-fbfly-independent": {
		"15-ary 3-flat with independent unidirectional channel control (§3.3.1)",
		func() Config {
			return NewConfig(TopoFBFLY, WithRadix(15), WithDimensions(3),
				WithIndependentChannels())
		},
	},
	"paper-fattree": {
		"folded-Clos comparison point: two-level fat tree at the default scale",
		func() Config { return NewConfig(TopoFatTree) },
	},
	"paper-clos3": {
		"three-tier folded Clos built from radix-8 chips (Table 1's other column)",
		func() Config { return NewConfig(TopoClos3, WithRadix(8)) },
	},
	"resilience": {
		"8-ary 2-flat under seeded-random link faults (0.5 events/ms, 200 µs MTTR)",
		func() Config {
			return NewConfig(TopoFBFLY, WithWorkload(WorkloadUniform),
				WithFaultRate(0.5, 200*time.Microsecond))
		},
	},
}

// Preset returns the named paper-system configuration. The available
// names are listed by PresetNames; unknown names report them in the
// error.
func Preset(name string) (Config, error) {
	p, ok := presets[name]
	if !ok {
		return Config{}, fmt.Errorf("epnet: unknown preset %q (have %v)", name, PresetNames())
	}
	return p.build(), nil
}

// PresetNames lists the available Preset names, sorted, with
// PresetDoc providing the one-line description of each.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PresetDoc returns the one-line description of a preset ("" when
// unknown).
func PresetDoc(name string) string { return presets[name].doc }
