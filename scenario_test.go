package epnet

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// eqCase builds the flag-style config the equivalence tests compare
// scenario runs against.
func eqCase(dir string) Config {
	cfg := DefaultConfig()
	cfg.Workload = WorkloadUniform
	cfg.Warmup = 50 * time.Microsecond
	cfg.Duration = 300 * time.Microsecond
	cfg.Seed = 7
	cfg.Shards = 1
	cfg.MetricsOut = filepath.Join(dir, "metrics.csv")
	return cfg
}

// TestSinglePhaseScenarioMatchesFlagRun is the API redesign's anchor
// guarantee: wrapping a flag-configured run as the equivalent
// single-phase scenario changes nothing — the Result and the sampled
// metrics series must match byte for byte.
func TestSinglePhaseScenarioMatchesFlagRun(t *testing.T) {
	flagCfg := eqCase(t.TempDir())
	want, err := Run(flagCfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSeries, err := os.ReadFile(flagCfg.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}

	doc := `{
	  "version": 1, "name": "equivalence",
	  "phases": [{"name": "steady", "duration": "300us",
	              "traffic": [{"workload": "uniform"}]}]
	}`
	path := filepath.Join(t.TempDir(), "eq.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	scenCfg := eqCase(t.TempDir())
	scenCfg, err = LoadScenario(path, scenCfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(scenCfg)
	if err != nil {
		t.Fatal(err)
	}
	gotSeries, err := os.ReadFile(scenCfg.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}

	// Only the scenario attachment and the temp output path may differ.
	got.Config.Scenario = want.Config.Scenario
	got.Config.MetricsOut = want.Config.MetricsOut
	if !reflect.DeepEqual(want, got) {
		t.Errorf("single-phase scenario diverges from the flag run\nflag:     %+v\nscenario: %+v", want, got)
	}
	if string(wantSeries) != string(gotSeries) {
		t.Errorf("metrics series diverges (%d vs %d bytes)", len(wantSeries), len(gotSeries))
	}
	if len(got.PhaseScores) != 0 {
		t.Errorf("single-phase run grew a scorecard: %+v", got.PhaseScores)
	}
}

// TestPresetLoadsAsScenario checks the other single-phase identity:
// every Preset name resolves through LoadScenario as a one-phase
// scenario, and running it reproduces the plain preset run.
func TestPresetLoadsAsScenario(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := LoadScenario(name, DefaultConfig())
		if err != nil {
			t.Fatalf("preset %q does not load as a scenario: %v", name, err)
		}
		if cfg.Scenario == nil || len(cfg.Scenario.Phases) != 1 {
			t.Fatalf("preset %q: want one wrapped phase, got %+v", name, cfg.Scenario)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset %q as scenario: %v", name, err)
		}
		if cfg.Workload != p.Workload || cfg.Duration != p.Duration {
			t.Errorf("preset %q: scenario mirrors workload=%s duration=%v, preset has %s/%v",
				name, cfg.Workload, cfg.Duration, p.Workload, p.Duration)
		}
		// The preset reference supplies its whole config, like -preset:
		// topology and shape must come from the preset, not the base.
		if cfg.Topology != p.Topology || cfg.K != p.K || cfg.C != p.C {
			t.Errorf("preset %q as scenario lost its topology: got %s k=%d c=%d, want %s k=%d c=%d",
				name, cfg.Topology, cfg.K, cfg.C, p.Topology, p.K, p.C)
		}
	}

	// Behavioral spot check on one preset: same Result either way.
	name := PresetNames()[0]
	p, err := Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	p.Warmup = 50 * time.Microsecond
	p.Duration = 200 * time.Microsecond
	want, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadScenario(name, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Warmup is set after the load: a preset reference replaces the base
	// config wholesale, so base mutations would be discarded.
	cfg.Warmup = 50 * time.Microsecond
	cfg.Scenario.Phases[0].Duration = Duration(200 * time.Microsecond)
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got.Config.Scenario = nil
	got.Config.Warmup = want.Config.Warmup
	got.Config.Duration = want.Config.Duration
	if !reflect.DeepEqual(want, got) {
		t.Errorf("preset %q via scenario diverges\npreset:   %+v\nscenario: %+v", name, want, got)
	}
}

// TestPhaseInsertionStability is the seed-prefix guarantee: inserting a
// phase must not perturb the phases around it. Seeds derive from phase
// names, never positions — checked directly on streamSeed — and the
// running prefix before the insertion point reproduces byte for byte.
func TestPhaseInsertionStability(t *testing.T) {
	// Seed derivation ignores the phase's position outright (except the
	// pinned phase-0/stream-0 identity seed).
	for _, name := range []string{"peak", "drain"} {
		for idx := 0; idx < 3; idx++ {
			if streamSeed(7, 1, name, idx) != streamSeed(7, 5, name, idx) {
				t.Fatalf("streamSeed(%q, stream %d) depends on phase position", name, idx)
			}
		}
	}
	if streamSeed(7, 0, "a", 0) != 7 {
		t.Fatal("phase 0 stream 0 must use the run seed verbatim")
	}
	if streamSeed(7, 1, "a", 0) == streamSeed(7, 1, "b", 0) {
		t.Fatal("different phase names must derive different seeds")
	}

	// Behavioral half: run [calm, peak] and [calm, added, peak]; the
	// "calm" phase precedes the insertion point, so its scorecard row is
	// identical in both runs.
	run := func(doc string) Result {
		path := filepath.Join(t.TempDir(), "s.json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		cfg, err := LoadScenario(path, eqCase(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	two := run(`{"version": 1, "phases": [
	  {"name": "calm", "duration": "200us", "traffic": [{"workload": "uniform"}]},
	  {"name": "peak", "duration": "200us", "traffic": [{"workload": "search", "load": 0.2}]}]}`)
	three := run(`{"version": 1, "phases": [
	  {"name": "calm", "duration": "200us", "traffic": [{"workload": "uniform"}]},
	  {"name": "added", "duration": "150us", "traffic": [{"workload": "advert"}]},
	  {"name": "peak", "duration": "200us", "traffic": [{"workload": "search", "load": 0.2}]}]}`)
	if len(two.PhaseScores) != 2 || len(three.PhaseScores) != 3 {
		t.Fatalf("scorecards have %d and %d rows", len(two.PhaseScores), len(three.PhaseScores))
	}
	if !reflect.DeepEqual(two.PhaseScores[0], three.PhaseScores[0]) {
		t.Errorf("inserting a later phase perturbed the prefix phase\n2-phase: %+v\n3-phase: %+v",
			two.PhaseScores[0], three.PhaseScores[0])
	}
}

// TestPresetJSONRoundTrip: every Preset survives Config's strict JSON
// codec unchanged — the single-source-of-truth requirement.
func TestPresetJSONRoundTrip(t *testing.T) {
	check := func(name string, cfg Config) {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var back Config
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v\n%s", name, err, data)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Errorf("%s does not round-trip\nin:  %+v\nout: %+v\njson: %s", name, cfg, back, data)
		}
	}
	check("DefaultConfig", DefaultConfig())
	check("PaperConfig", PaperConfig())
	for _, name := range PresetNames() {
		p, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		check("preset "+name, p)
	}
	// A config with a scenario attached round-trips too.
	cfg, err := LoadScenario("diurnal", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	check("scenario diurnal", cfg)
}

// TestConfigJSONStrictAndMerging pins the codec's two behaviors: unknown
// fields are *ConfigFieldError rejections, and partial documents merge
// over the receiver rather than zeroing it.
func TestConfigJSONStrictAndMerging(t *testing.T) {
	var cfg Config
	err := json.Unmarshal([]byte(`{"workload": "search", "bandwidth": 10}`), &cfg)
	var fe *ConfigFieldError
	if !errors.As(err, &fe) {
		t.Fatalf("unknown field error = %v (%T), want *ConfigFieldError", err, err)
	}
	if !strings.Contains(fe.Error(), "bandwidth") {
		t.Errorf("error %q does not name the unknown field", fe)
	}

	base := DefaultConfig()
	base.Seed = 42
	if err := json.Unmarshal([]byte(`{"load": 0.25}`), &base); err != nil {
		t.Fatal(err)
	}
	if base.Load != 0.25 {
		t.Error("partial document did not apply")
	}
	if base.Seed != 42 || base.K != 8 {
		t.Errorf("partial document zeroed unrelated fields: seed=%d k=%d", base.Seed, base.K)
	}

	// Durations accept Go strings and bare nanoseconds.
	if err := json.Unmarshal([]byte(`{"warmup": "75us", "duration": 1000000}`), &base); err != nil {
		t.Fatal(err)
	}
	if base.Warmup != 75*time.Microsecond || base.Duration != time.Millisecond {
		t.Errorf("durations parsed to %v/%v", base.Warmup, base.Duration)
	}
}

// TestScenarioConfigRejections is the rejected-configuration table for
// the scenario layer.
func TestScenarioConfigRejections(t *testing.T) {
	t.Run("chaos needs adaptive routing", func(t *testing.T) {
		cfg, err := LoadScenario("chaos", DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Routing = RoutingDOR
		if err := cfg.Validate(); err == nil {
			t.Error("chaos scenario under DOR routing accepted")
		} else if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("error %v does not match ErrInvalidConfig", err)
		}
	})
	t.Run("nested scenario", func(t *testing.T) {
		doc := `{"version": 1,
		         "config": {"scenario": {"version": 1, "phases": [{"name": "x", "duration": "1us"}]}},
		         "phases": [{"name": "a", "duration": "1us"}]}`
		path := filepath.Join(t.TempDir(), "nested.json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadScenario(path, DefaultConfig()); err == nil {
			t.Error("scenario carrying a scenario in its config block accepted")
		}
	})
	t.Run("unknown phase policy", func(t *testing.T) {
		doc := `{"version": 1, "phases": [{"name": "a", "duration": "1us",
		         "policy": {"kind": "overclock"}}]}`
		path := filepath.Join(t.TempDir(), "policy.json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		cfg, err := LoadScenario(path, DefaultConfig())
		if err != nil {
			t.Fatal(err) // policy enums are validated by Config.Validate, not Parse
		}
		if err := cfg.Validate(); !errors.Is(err, ErrUnknownPolicy) {
			t.Errorf("Validate = %v, want ErrUnknownPolicy", err)
		}
	})
	t.Run("unknown config field in scenario block", func(t *testing.T) {
		doc := `{"version": 1, "config": {"worklod": "search"},
		         "phases": [{"name": "a", "duration": "1us"}]}`
		path := filepath.Join(t.TempDir(), "typo.json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadScenario(path, DefaultConfig())
		var fe *ConfigFieldError
		if !errors.As(err, &fe) {
			t.Errorf("config-block typo: err = %v (%T), want *ConfigFieldError", err, err)
		}
	})
	t.Run("unresolvable reference", func(t *testing.T) {
		if _, err := LoadScenario("no-such-scenario-anywhere", DefaultConfig()); err == nil {
			t.Error("bogus scenario reference accepted")
		}
	})
}

// TestEmbeddedScenarioLibrary runs every embedded scenario end to end
// at the library's own durations and checks the scorecard makes sense.
func TestEmbeddedScenarioLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole library")
	}
	names := ScenarioNames()
	if len(names) < 6 {
		t.Fatalf("embedded library has %d scenarios, want >= 6: %v", len(names), names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			if ScenarioDoc(name) == "" {
				t.Errorf("scenario %q has no notes", name)
			}
			cfg, err := LoadScenario(name, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			cfg.Warmup = 50 * time.Microsecond
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			phases := len(cfg.Scenario.Phases)
			if phases > 1 && len(res.PhaseScores) != phases {
				t.Fatalf("scorecard has %d rows for %d phases", len(res.PhaseScores), phases)
			}
			if res.DeliveredPackets == 0 {
				t.Fatal("scenario delivered nothing")
			}
			for _, ps := range res.PhaseScores {
				if ps.End <= ps.Start {
					t.Errorf("phase %q window [%v, %v] is empty", ps.Phase, ps.Start, ps.End)
				}
				if ps.DeliveredFraction < 0.5 {
					t.Errorf("phase %q delivered only %.1f%%", ps.Phase, ps.DeliveredFraction*100)
				}
			}
		})
	}
}

// TestScenarioScorecardGoldens pins each embedded scenario's scorecard
// CSV against results/scenarios/. The simulation is deterministic, so
// these are byte-exact; regenerate intentionally with
// EPNET_UPDATE_GOLDEN=1 go test -run TestScenarioScorecardGoldens .
func TestScenarioScorecardGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole library")
	}
	update := os.Getenv("EPNET_UPDATE_GOLDEN") != ""
	for _, name := range ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			cfg, err := LoadScenario(name, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			cfg.Warmup = 50 * time.Microsecond
			cfg.Seed = 1
			cfg.Shards = 1
			// Flow tracing populates the decomposition columns, so the
			// goldens also pin the tracer's determinism.
			cfg.FlowTrace = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := res.ScorecardCSV()
			golden := filepath.Join("results", "scenarios", name+".csv")
			if update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (regenerate with EPNET_UPDATE_GOLDEN=1)", err)
			}
			if string(want) != string(got) {
				t.Errorf("scorecard diverges from %s (regenerate with EPNET_UPDATE_GOLDEN=1 if intended)\nwant:\n%s\ngot:\n%s",
					golden, want, got)
			}
		})
	}
}
